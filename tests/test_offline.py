"""Tests for the offline optimal solvers (DP, brute force, lower bound)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CostModel,
    Trace,
    brute_force_optimal_cost,
    optimal_cost,
    optimal_schedule,
)
from repro.offline import opt_lower_bound
from repro.workloads import (
    consistency_tight_trace,
    robustness_tight_trace,
    uniform_random_trace,
    wang_counterexample_trace,
)


class TestHandComputedOptima:
    def test_empty_trace_is_free(self):
        assert optimal_cost(Trace(2, []), CostModel(lam=1.0, n=2)) == 0.0

    def test_single_local_request(self):
        # copy sits at server 0 from t=0; serving r_1 at t=3 locally costs
        # 3 (storage)... or skip + bridge = lam + 3. Optimal: min(3, ...)
        tr = Trace(1, [(3.0, 0)])
        assert optimal_cost(tr, CostModel(lam=10.0, n=1)) == pytest.approx(3.0)

    def test_single_remote_request(self):
        # r_1 at server 1 at t=3: transfer lam + one copy stored (0,3)
        tr = Trace(2, [(3.0, 1)])
        assert optimal_cost(tr, CostModel(lam=10.0, n=2)) == pytest.approx(13.0)

    def test_local_request_far_away_uses_bridge(self):
        # r_1 at server 0 at t=50, lam=10: must keep >= one copy (0,50)
        # = 50 regardless; serving locally from it is free
        tr = Trace(1, [(50.0, 0)])
        assert optimal_cost(tr, CostModel(lam=10.0, n=1)) == pytest.approx(50.0)

    def test_dense_same_server_requests_kept(self):
        tr = Trace(1, [(1.0, 0), (2.0, 0), (3.0, 0)])
        assert optimal_cost(tr, CostModel(lam=10.0, n=1)) == pytest.approx(3.0)

    def test_two_servers_alternating_short_gaps(self):
        # both servers should hold copies throughout
        tr = Trace(2, [(1.0, 1), (2.0, 0), (3.0, 1), (4.0, 0)])
        model = CostModel(lam=10.0, n=2)
        # server 1 first request: lam + keep both: storage server0 (0,4)=4,
        # server1 (1,3)=2 ... exact: 10 + 4 + 2 = 16
        assert optimal_cost(tr, model) == pytest.approx(16.0)

    def test_paper_figure6_optimum(self):
        # one cycle: optimal = 3*lam + 2*eps
        lam, eps = 10.0, 1e-3
        tr = consistency_tight_trace(lam, cycles=1, eps=eps)
        assert optimal_cost(tr, CostModel(lam=lam, n=2)) == pytest.approx(
            3 * lam + 2 * eps
        )

    def test_paper_figure5_optimum(self):
        # optimal = (m-1)(alpha lam + eps) + lam
        lam, alpha, m, eps = 10.0, 0.5, 21, 1e-3
        tr = robustness_tight_trace(lam, alpha, m, eps=eps)
        expected = (m - 1) * (alpha * lam + eps) + lam
        assert optimal_cost(tr, CostModel(lam=lam, n=2)) == pytest.approx(
            expected, rel=1e-9
        )

    def test_paper_figure9_optimum(self):
        # our generator's m counts server-1 requests (the paper's
        # r_2..r_m plus r_2 itself starts the chain), so the paper's
        # (m-2) cycles become (m-1) here
        lam, m, eps = 10.0, 50, 1e-3
        tr = wang_counterexample_trace(lam, m=m, eps=eps)
        expected = (m - 1) * (2 * lam + eps) + lam + eps
        assert optimal_cost(tr, CostModel(lam=lam, n=2)) == pytest.approx(
            expected, rel=1e-9
        )


class TestDPAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_instances(self, seed):
        rng = np.random.default_rng(seed)
        for _ in range(40):
            n = int(rng.integers(1, 4))
            m = int(rng.integers(1, 9))
            lam = float(rng.uniform(0.1, 5.0))
            tr = uniform_random_trace(
                n, m, horizon=float(rng.uniform(1, 20)), seed=int(rng.integers(2**31))
            )
            model = CostModel(lam=lam, n=n)
            assert optimal_cost(tr, model) == pytest.approx(
                brute_force_optimal_cost(tr, model), rel=1e-9, abs=1e-9
            )

    def test_extreme_lambda_small(self):
        rng = np.random.default_rng(101)
        for _ in range(20):
            tr = uniform_random_trace(3, 7, horizon=10.0, seed=int(rng.integers(2**31)))
            model = CostModel(lam=1e-3, n=3)
            assert optimal_cost(tr, model) == pytest.approx(
                brute_force_optimal_cost(tr, model), rel=1e-9, abs=1e-9
            )

    def test_extreme_lambda_large(self):
        rng = np.random.default_rng(202)
        for _ in range(20):
            tr = uniform_random_trace(3, 7, horizon=10.0, seed=int(rng.integers(2**31)))
            model = CostModel(lam=1e3, n=3)
            assert optimal_cost(tr, model) == pytest.approx(
                brute_force_optimal_cost(tr, model), rel=1e-9, abs=1e-9
            )


class TestBruteForceGuards:
    def test_too_many_requests(self):
        tr = uniform_random_trace(2, 20, horizon=10.0, seed=0)
        with pytest.raises(ValueError, match="too large"):
            brute_force_optimal_cost(tr, CostModel(lam=1.0, n=2))

    def test_too_many_servers(self):
        tr = uniform_random_trace(6, 5, horizon=10.0, seed=0)
        with pytest.raises(ValueError, match="too large"):
            brute_force_optimal_cost(tr, CostModel(lam=1.0, n=6))

    def test_non_uniform_rates_supported(self):
        tr = Trace(2, [(1.0, 1), (2.0, 1)])
        model = CostModel(lam=5.0, n=2, storage_rates=(1.0, 3.0))
        cost = brute_force_optimal_cost(tr, model)
        # serve r1 by transfer (5) then: keep at server1 rate 3 for 1s (3)
        # + keep server0 (0,1) rate 1 (1) then drop server0... storage
        # server0 must cover (0,1): 1. Total 5 + 1 + min(3, 5+...)=3 -> 9
        assert cost == pytest.approx(9.0)

    def test_dp_rejects_non_uniform(self):
        tr = Trace(2, [(1.0, 1)])
        model = CostModel(lam=5.0, n=2, storage_rates=(1.0, 3.0))
        with pytest.raises(ValueError, match="uniform"):
            optimal_cost(tr, model)


class TestOptimalSchedule:
    def test_cost_matches_optimal_cost(self):
        rng = np.random.default_rng(33)
        for _ in range(20):
            n = int(rng.integers(1, 5))
            m = int(rng.integers(1, 25))
            tr = uniform_random_trace(n, m, 30.0, seed=int(rng.integers(2**31)))
            model = CostModel(lam=2.0, n=n)
            cost, decisions = optimal_schedule(tr, model)
            assert cost == pytest.approx(optimal_cost(tr, model))
            assert len(decisions) == m + 1  # includes the dummy r_0

    def test_decisions_indexed_in_order(self):
        tr = uniform_random_trace(2, 10, 20.0, seed=3)
        _, decisions = optimal_schedule(tr, CostModel(lam=2.0, n=2))
        assert [d.request_index for d in decisions] == list(range(0, 11))

    def test_dense_trace_keeps(self):
        tr = Trace(1, [(1.0, 0), (2.0, 0), (3.0, 0)])
        _, decisions = optimal_schedule(tr, CostModel(lam=10.0, n=1))
        # gaps of 1 << lam: keeping is optimal for all but the last
        assert decisions[0].keep  # r_0: the initial copy serves r_1
        assert decisions[1].keep and decisions[2].keep
        assert not decisions[3].keep  # no next local request

    def test_empty_trace(self):
        cost, decisions = optimal_schedule(Trace(2, []), CostModel(lam=1.0, n=2))
        assert cost == 0.0 and decisions == []


class TestOptLowerBound:
    def test_never_exceeds_optimal(self):
        rng = np.random.default_rng(55)
        for _ in range(40):
            n = int(rng.integers(1, 5))
            m = int(rng.integers(1, 40))
            lam = float(rng.uniform(0.1, 8.0))
            tr = uniform_random_trace(n, m, 50.0, seed=int(rng.integers(2**31)))
            model = CostModel(lam=lam, n=n)
            assert opt_lower_bound(tr, model) <= optimal_cost(tr, model) + 1e-9

    def test_tight_on_dense_single_server(self):
        tr = Trace(1, [(1.0, 0), (2.0, 0), (3.0, 0)])
        model = CostModel(lam=10.0, n=1)
        assert opt_lower_bound(tr, model) == pytest.approx(3.0)
        assert optimal_cost(tr, model) == pytest.approx(3.0)

    def test_positive_for_nonempty_traces(self):
        tr = Trace(2, [(1.0, 1)])
        assert opt_lower_bound(tr, CostModel(lam=5.0, n=2)) > 0

    def test_model_mismatch_rejected(self):
        tr = Trace(2, [(1.0, 1)])
        with pytest.raises(ValueError):
            opt_lower_bound(tr, CostModel(lam=5.0, n=3))
