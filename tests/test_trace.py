"""Unit tests for repro.core.trace."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import Request, Trace, TraceError
from repro.core.trace import merge_traces


class TestRequest:
    def test_basic_fields(self):
        r = Request(1.5, 2, 7)
        assert r.time == 1.5
        assert r.server == 2
        assert r.index == 7

    def test_negative_time_rejected(self):
        with pytest.raises(TraceError):
            Request(-0.1, 0)

    def test_negative_server_rejected(self):
        with pytest.raises(TraceError):
            Request(1.0, -1)

    def test_frozen(self):
        r = Request(1.0, 0)
        with pytest.raises(AttributeError):
            r.time = 2.0  # type: ignore[misc]


class TestTraceConstruction:
    def test_from_tuples(self):
        tr = Trace(2, [(1.0, 0), (2.0, 1)])
        assert len(tr) == 2
        assert tr[0].server == 0
        assert tr[1].time == 2.0

    def test_indices_are_one_based(self):
        tr = Trace(2, [(1.0, 0), (2.0, 1), (3.0, 0)])
        assert [r.index for r in tr] == [1, 2, 3]

    def test_from_requests_reindexes(self):
        tr = Trace(2, [Request(1.0, 0, 99), Request(2.0, 1, -5)])
        assert [r.index for r in tr] == [1, 2]

    def test_zero_servers_rejected(self):
        with pytest.raises(TraceError):
            Trace(0, [])

    def test_time_zero_rejected(self):
        # the dummy request occupies time 0
        with pytest.raises(TraceError):
            Trace(1, [(0.0, 0)])

    def test_non_increasing_times_rejected(self):
        with pytest.raises(TraceError):
            Trace(2, [(2.0, 0), (2.0, 1)])
        with pytest.raises(TraceError):
            Trace(2, [(2.0, 0), (1.0, 1)])

    def test_server_out_of_range_rejected(self):
        with pytest.raises(TraceError):
            Trace(2, [(1.0, 2)])

    def test_empty_trace_ok(self):
        tr = Trace(3, [])
        assert len(tr) == 0
        assert tr.span == 0.0

    def test_from_arrays(self):
        tr = Trace.from_arrays([1.0, 2.0, 3.0], [0, 1, 0], n=2)
        assert len(tr) == 3
        assert tr[1].server == 1

    def test_from_arrays_infers_n(self):
        tr = Trace.from_arrays([1.0, 2.0], [0, 4])
        assert tr.n == 5

    def test_from_arrays_shape_mismatch(self):
        with pytest.raises(TraceError):
            Trace.from_arrays([1.0, 2.0], [0])


class TestTraceViews:
    def test_times_servers_arrays(self):
        tr = Trace(3, [(1.0, 0), (2.5, 2)])
        assert np.allclose(tr.times, [1.0, 2.5])
        assert list(tr.servers) == [0, 2]

    def test_arrays_read_only(self):
        tr = Trace(2, [(1.0, 0)])
        with pytest.raises(ValueError):
            tr.times[0] = 5.0

    def test_span(self):
        tr = Trace(2, [(1.0, 0), (9.0, 1)])
        assert tr.span == 9.0

    def test_servers_touched(self):
        tr = Trace(5, [(1.0, 3), (2.0, 3), (3.0, 1)])
        assert tr.servers_touched == (1, 3)

    def test_with_dummy(self):
        tr = Trace(2, [(1.0, 1)])
        seq = tr.with_dummy()
        assert seq[0].time == 0.0
        assert seq[0].server == 0
        assert seq[0].index == 0
        assert seq[1].index == 1

    def test_iteration(self):
        tr = Trace(2, [(1.0, 0), (2.0, 1)])
        assert [r.time for r in tr] == [1.0, 2.0]


class TestPerServerHelpers:
    def test_per_server_times_includes_dummy(self):
        tr = Trace(2, [(1.0, 1), (2.0, 0)])
        per = tr.per_server_times()
        assert list(per[0]) == [0.0, 2.0]
        assert list(per[1]) == [1.0]

    def test_per_server_times_untouched_server(self):
        tr = Trace(3, [(1.0, 0)])
        per = tr.per_server_times()
        assert list(per[2]) == []

    def test_preceding_local_index(self):
        tr = Trace(2, [(1.0, 1), (2.0, 0), (3.0, 1), (4.0, 2 - 2)])
        p = tr.preceding_local_index()
        # r1 at server 1: first there -> -1; r2 at server 0: dummy -> 0;
        # r3 at server 1: r1 -> 1; r4 at server 0: r2 -> 2
        assert p == [-1, 0, 1, 2]

    def test_inter_request_gaps(self):
        tr = Trace(2, [(1.0, 1), (2.0, 0), (4.0, 1)])
        gaps = tr.inter_request_gaps()
        assert math.isinf(gaps[0])       # first at server 1
        assert gaps[1] == 2.0            # vs dummy at t=0
        assert gaps[2] == 3.0            # 4.0 - 1.0

    def test_next_local_time(self):
        tr = Trace(2, [(1.0, 1), (2.0, 0), (4.0, 1)])
        nxt = tr.next_local_time()
        # index 0 = dummy at server 0 -> next local at 2.0
        assert nxt[0] == 2.0
        assert nxt[1] == 4.0   # r1 at server 1 -> r3
        assert math.isinf(nxt[2])
        assert math.isinf(nxt[3])


class TestWindows:
    def test_slice_time(self):
        tr = Trace(2, [(1.0, 0), (2.0, 1), (3.0, 0), (4.0, 1)])
        sub = tr.slice_time(1.0, 3.0)
        assert [r.time for r in sub] == [2.0, 3.0]

    def test_slice_time_empty(self):
        tr = Trace(2, [(1.0, 0)])
        assert len(tr.slice_time(5.0, 10.0)) == 0

    def test_request_at_or_after(self):
        tr = Trace(2, [(1.0, 0), (3.0, 1)])
        assert tr.request_at_or_after(2.0).time == 3.0
        assert tr.request_at_or_after(1.0).time == 1.0
        assert tr.request_at_or_after(3.5) is None

    def test_count_in_window(self):
        tr = Trace(2, [(1.0, 0), (2.0, 0), (3.0, 1)])
        assert tr.count_in_window(0, 0.0, 2.0) == 2
        assert tr.count_in_window(0, 1.0, 2.0) == 1
        assert tr.count_in_window(1, 0.0, 10.0) == 1


class TestSummaryAndMerge:
    def test_summary_keys(self):
        tr = Trace(2, [(1.0, 0), (2.0, 1)])
        s = tr.summary()
        assert s["n_requests"] == 2
        assert s["n_servers"] == 2
        assert s["span"] == 2.0

    def test_summary_empty(self):
        s = Trace(2, []).summary()
        assert math.isnan(s["mean_local_gap"])

    def test_merge_traces(self):
        a = Trace(2, [(1.0, 0), (3.0, 1)])
        b = Trace(2, [(2.0, 1)])
        merged = merge_traces([a, b])
        assert [r.time for r in merged] == [1.0, 2.0, 3.0]
        assert [r.server for r in merged] == [0, 1, 1]

    def test_merge_collision_rejected(self):
        a = Trace(2, [(1.0, 0)])
        b = Trace(2, [(1.0, 1)])
        with pytest.raises(TraceError):
            merge_traces([a, b])

    def test_merge_respects_explicit_n(self):
        a = Trace(2, [(1.0, 0)])
        merged = merge_traces([a], n=7)
        assert merged.n == 7
