"""Fleet-scale dispatch tests: cross-object slabs, sharded workers,
streaming aggregates, chunking, and the fleet CLI.

The load-bearing property is bit-identity: grouped slab evaluation,
sharded worker dispatch, and streaming aggregation must reproduce the
serial per-object reference loop float-for-float, including mixed
Algorithm-1 + Wang fleets, which ride the kernel tier as one slab.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ConventionalReplication, Trace, TraceError
from repro.algorithms.wang import WangReplication
from repro.analysis.sweep import algorithm1_factory
from repro.cli import main
from repro.experiments import ExperimentRunner
from repro.experiments.cache import trace_digest
from repro.system import (
    FleetReport,
    FleetStats,
    MultiObjectSystem,
    ObjectSpec,
    split_trace_by_object,
)
from repro.workloads import uniform_random_trace


def la_oracle(trace, model):
    return algorithm1_factory(trace, model.lam, 0.5, 1.0, 0)


def la_noisy(trace, model):
    return algorithm1_factory(trace, model.lam, 0.3, 0.7, 1)


def conventional(trace, model):
    return ConventionalReplication()


def wang(trace, model):
    return WangReplication()


FACTORIES = [la_oracle, la_noisy, conventional, wang]


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------


@st.composite
def fleet_systems(draw, max_objects=8):
    """A small fleet mixing templates, lambdas, and policies (incl.
    Wang, which shares the kernel slab via the cascade replay)."""
    n = draw(st.integers(2, 4))
    templates = []
    for _ in range(draw(st.integers(1, 3))):
        m = draw(st.integers(1, 12))
        gaps = draw(
            st.lists(
                st.floats(0.01, 5.0, allow_nan=False, allow_infinity=False),
                min_size=m,
                max_size=m,
            )
        )
        servers = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
        times = np.cumsum(gaps)
        templates.append(Trace(n, list(zip(times.tolist(), servers))))
    k = draw(st.integers(1, max_objects))
    specs = [
        ObjectSpec(
            f"o{i:02d}",
            templates[draw(st.integers(0, len(templates) - 1))],
            draw(st.sampled_from([1.0, 5.0, 25.0])),
            draw(st.sampled_from(FACTORIES)),
        )
        for i in range(k)
    ]
    return MultiObjectSystem(n, specs)


def _mixed_system(n_objects=30, n=4, seed=0):
    templates = [
        uniform_random_trace(n, 20 + 15 * t, horizon=80.0, seed=seed + t)
        for t in range(3)
    ]
    specs = [
        ObjectSpec(
            f"obj-{i:03d}",
            templates[i % 3],
            (5.0, 25.0)[i % 2],
            FACTORIES[i % len(FACTORIES)],
        )
        for i in range(n_objects)
    ]
    return MultiObjectSystem(n, specs)


def _assert_outcomes_equal(a, b):
    assert [o.object_id for o in a.outcomes] == [o.object_id for o in b.outcomes]
    for x, y in zip(a.outcomes, b.outcomes):
        assert x.online == y.online, x.object_id
        assert x.optimal == y.optimal, x.object_id


# ----------------------------------------------------------------------
# bit-identity: grouped slabs / sharded runner / streaming vs serial
# ----------------------------------------------------------------------


class TestFleetBitIdentity:
    @settings(max_examples=20, deadline=None)
    @given(fleet_systems())
    def test_grouped_sharded_streaming_match_serial(self, system):
        serial = system.run(engine="fast")
        grouped = system.run(engine="auto", grouped=True)
        _assert_outcomes_equal(serial, grouped)
        runner = ExperimentRunner(workers=1)
        sharded = runner.run_fleet(system, engine="auto")
        _assert_outcomes_equal(serial, sharded)
        streaming = runner.run_fleet(system, engine="auto", materialize=False)
        assert streaming.online_total == serial.online_total
        assert streaming.optimal_total == serial.optimal_total
        assert streaming.worst_object_ratio == serial.worst_object_ratio
        assert streaming.n_objects == serial.n_objects

    @settings(max_examples=10, deadline=None)
    @given(fleet_systems(max_objects=5))
    def test_batch_tier_matches_reference(self, system):
        reference = system.run(engine="reference")
        batch = system.run(engine="batch", grouped=True)
        _assert_outcomes_equal(reference, batch)

    def test_kernel_slab_matches_serial(self):
        tr = uniform_random_trace(3, 60, horizon=120.0, seed=2)
        specs = [
            ObjectSpec(f"k{i}", tr, 10.0 * (1 + i % 2), la_oracle)
            for i in range(6)
        ]
        system = MultiObjectSystem(3, specs)
        serial = system.run(engine="fast")
        kernel = system.run(engine="kernel", grouped=True)
        _assert_outcomes_equal(serial, kernel)

    def test_strict_kernel_takes_mixed_wang_fleet(self):
        """A heterogeneous Algorithm-1 + Wang fleet is a single-tier
        kernel slab now — no scalar fallback, bit-identical costs."""
        tr = uniform_random_trace(3, 30, horizon=60.0, seed=0)
        specs = [
            ObjectSpec("a", tr, 5.0, la_oracle),
            ObjectSpec("b", tr, 5.0, wang),
            ObjectSpec("c", tr, 25.0, wang),
            ObjectSpec("d", tr, 25.0, conventional),
        ]
        system = MultiObjectSystem(3, specs)
        serial = system.run(engine="fast")
        kernel = system.run(engine="kernel", grouped=True)
        _assert_outcomes_equal(serial, kernel)
        auto = system.run(engine="auto", grouped=True)
        _assert_outcomes_equal(serial, auto)

    def test_worker_pool_matches_serial(self):
        system = _mixed_system(30)
        serial = system.run(engine="fast")
        runner = ExperimentRunner(workers=2)
        sharded = runner.run_fleet(system, engine="auto")
        _assert_outcomes_equal(serial, sharded)
        streaming = runner.run_fleet(system, engine="auto", materialize=False)
        assert streaming.online_total == serial.online_total
        assert streaming.optimal_total == serial.optimal_total

    def test_skip_optimal(self):
        system = _mixed_system(8)
        runner = ExperimentRunner(workers=1)
        report = runner.run_fleet(system, compute_optimal=False, engine="fast")
        assert report.optimal_total == 0.0
        serial = system.run(compute_optimal=False, engine="fast")
        assert report.online_total == serial.online_total


# ----------------------------------------------------------------------
# chunking
# ----------------------------------------------------------------------


class TestFleetChunking:
    def _chunk_inputs(self, specs):
        spec_digest = [trace_digest(s.trace) for s in specs]
        spec_f = [0] * len(specs)
        groups: dict = {}
        for i, s in enumerate(specs):
            groups.setdefault((spec_digest[i], s.lam), []).append(i)
        return [(d, lam, idxs) for (d, lam), idxs in groups.items()], spec_f

    def test_skewed_fleet_chunking_deterministic_and_complete(self):
        giant = uniform_random_trace(3, 3000, horizon=6000.0, seed=9)
        tiny = [
            uniform_random_trace(3, 8, horizon=20.0, seed=t) for t in range(4)
        ]
        specs = [
            ObjectSpec(f"t{i:02d}", tiny[i % 4], 5.0, la_oracle)
            for i in range(40)
        ]
        specs.insert(7, ObjectSpec("giant", giant, 5.0, la_oracle))
        runner = ExperimentRunner(workers=4)
        group_items, spec_f = self._chunk_inputs(specs)
        c1 = runner._fleet_chunks(group_items, specs, spec_f)
        c2 = runner._fleet_chunks(group_items, specs, spec_f)
        assert c1 == c2  # same inputs -> byte-identical chunking
        covered = sorted(
            i for chunk in c1 for _, _, idxs, _ in chunk for i in idxs
        )
        assert covered == list(range(len(specs)))
        assert len(c1) > 1  # the skewed fleet actually splits
        # the giant object dominates the per-chunk cost budget, so the
        # chunk carrying it holds nothing else
        for chunk in c1:
            idxs = [i for _, _, sub, _ in chunk for i in sub]
            if 7 in idxs:
                assert idxs == [7]

    def test_chunk_size_override(self):
        specs = [
            ObjectSpec(
                f"o{i}", uniform_random_trace(2, 4, 10.0, seed=i), 2.0, la_oracle
            )
            for i in range(10)
        ]
        runner = ExperimentRunner(workers=2, chunk_size=3)
        group_items, spec_f = self._chunk_inputs(specs)
        chunks = runner._fleet_chunks(group_items, specs, spec_f)
        sizes = [sum(len(idxs) for _, _, idxs, _ in c) for c in chunks]
        assert all(s <= 3 for s in sizes)
        assert sum(sizes) == len(specs)

    def test_end_to_end_deterministic(self):
        system = _mixed_system(20, seed=3)
        runner = ExperimentRunner(workers=2)
        r1 = runner.run_fleet(system, engine="auto", materialize=False)
        r2 = runner.run_fleet(system, engine="auto", materialize=False)
        assert r1.online_total == r2.online_total
        assert r1.optimal_total == r2.optimal_total
        assert r1.worst_object_ratio == r2.worst_object_ratio


# ----------------------------------------------------------------------
# streaming aggregates
# ----------------------------------------------------------------------


class TestStreamingReport:
    def test_fleet_stats_accumulator(self):
        stats = FleetStats(top_k=2)
        stats.observe("a", 10.0, 5.0, 7)
        stats.observe("b", 30.0, 10.0, 3)
        stats.observe("c", 8.0, 8.0, 1)
        assert stats.n_objects == 3
        assert stats.online_total == 48.0
        assert stats.optimal_total == 23.0
        assert stats.n_requests_total == 11
        assert stats.worst_ratio == 3.0
        assert stats.worst_object_id == "b"
        offenders = stats.top_offenders()
        assert [o["object_id"] for o in offenders] == ["b", "a"]
        assert offenders[0]["n_requests"] == 3

    def test_zero_optimal_ratio_convention(self):
        stats = FleetStats()
        stats.observe("z", 0.0, 0.0, 0)
        assert stats.worst_ratio == 1.0
        stats.observe("y", 1.0, 0.0, 1)
        assert stats.worst_ratio == float("inf")

    def test_streaming_report_surface(self):
        system = _mixed_system(30)
        runner = ExperimentRunner(workers=1)
        report = runner.run_fleet(
            system, engine="auto", materialize=False, top_k=4
        )
        assert report.n_objects == 30
        with pytest.raises(ValueError):
            report.by_object()
        offenders = report.top_offenders()
        assert len(offenders) == 4
        ratios = [o["ratio"] for o in offenders]
        assert ratios == sorted(ratios, reverse=True)
        table = report.summary_table()
        assert "(top 4 of 30 objects by ratio)" in table
        assert "TOTAL" in table
        q50, q90, q99 = (
            report.ratio_quantile(0.5),
            report.ratio_quantile(0.9),
            report.ratio_quantile(0.99),
        )
        assert q50 <= q90 <= q99
        assert q99 >= report.worst_object_ratio / 10 ** (1 / 16)

    def test_materialized_table_caps_at_top_k(self):
        system = _mixed_system(12)
        report = system.run(engine="fast")
        table = report.summary_table(top_k=3)
        assert "(top 3 of 12 objects by ratio)" in table
        full = report.summary_table()
        for outcome in report.outcomes:
            assert outcome.object_id in full

    def test_outcomes_carry_n_requests(self):
        system = _mixed_system(6)
        runner = ExperimentRunner(workers=1)
        report = runner.run_fleet(system, engine="fast")
        for outcome, spec in zip(report.outcomes, system.specs):
            assert outcome.requests == len(spec.trace)

    def test_streaming_add_rejects_missing_result_when_materialized(self):
        report = FleetReport(materialize=True)
        with pytest.raises(ValueError):
            report.add("a", 1.0, 1.0, 1, result=None)


# ----------------------------------------------------------------------
# split_trace_by_object (vectorized; one global validation pass)
# ----------------------------------------------------------------------


class TestSplitVectorized:
    def _reference(self, rows, n):
        per: dict = {}
        for t, s, o in rows:
            per.setdefault(o, []).append((t, s))
        out = {}
        for o in sorted(per):
            items = sorted(per[o])
            out[o] = Trace(n, items)
        return out

    def test_matches_reference_on_shuffled_log(self):
        rng = np.random.default_rng(7)
        rows = []
        for i in range(40):
            times = np.cumsum(rng.random(15) + 0.01)
            for t in times.tolist():
                rows.append((t, int(rng.integers(0, 4)), f"o{i:03d}"))
        rng.shuffle(rows)
        vec = split_trace_by_object(rows, 4)
        ref = self._reference(rows, 4)
        assert list(vec) == sorted(ref)  # sorted id order
        for o, tr in vec.items():
            assert tr.times.tolist() == ref[o].times.tolist()
            assert tr.servers.tolist() == ref[o].servers.tolist()

    def test_empty_log(self):
        assert split_trace_by_object([], 3) == {}

    @pytest.mark.parametrize(
        "rows,expected",
        [
            (
                [(1.0, 0, "b"), (1.0, 1, "b"), (0.5, 0, "a")],
                "object b: request times must be strictly increasing "
                "and > 0 (violation at index 2: 1.0 <= 1.0)",
            ),
            (
                [(0.0, 0, "a"), (1.0, 1, "a")],
                "object a: request times must be strictly increasing "
                "and > 0 (violation at index 1: 0.0 <= 0.0)",
            ),
            (
                [(1.0, -2, "a"), (2.0, 0, "a")],
                "object a: server index must be >= 0, got -2",
            ),
            (
                [(1.0, 0, "a"), (2.0, 9, "a"), (0.5, 1, "b")],
                "object a: request 2 at server 9 but n=2",
            ),
        ],
    )
    def test_error_messages_match_scalar_path(self, rows, expected):
        with pytest.raises(TraceError) as err:
            split_trace_by_object(rows, 2)
        assert str(err.value) == expected

    def test_first_violating_object_in_sorted_order(self):
        # both objects are invalid; the error names the first by id
        rows = [(1.0, 9, "zz"), (2.0, 0, "zz"), (3.0, 9, "aa")]
        with pytest.raises(TraceError, match="^object aa:"):
            split_trace_by_object(rows, 2)


# ----------------------------------------------------------------------
# CLI: repro fleet run
# ----------------------------------------------------------------------


class TestFleetCLI:
    ARGS = ["fleet", "run", "--workers", "1", "--quiet"]

    def test_scenario_run(self, capsys):
        rc = main(
            self.ARGS
            + ["--scenario", "smoke", "--objects", "12", "--templates", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "12 objects" in out
        assert "fleet ratio" in out
        assert "TOTAL" in out

    def test_scenario_stream_mode(self, capsys):
        rc = main(
            self.ARGS
            + [
                "--scenario",
                "smoke",
                "--objects",
                "10",
                "--stream",
                "--top-k",
                "3",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "(top 3 of 10 objects by ratio)" in out

    def test_access_log_run(self, tmp_path, capsys):
        log = tmp_path / "fleet.csv"
        lines = ["time,server,object"]
        for i in range(4):
            for j in range(5):
                lines.append(f"{0.5 + j + i * 0.01},{(i + j) % 3},obj-{i}")
        log.write_text("\n".join(lines) + "\n", encoding="utf-8")
        rc = main(self.ARGS + ["--access-log", str(log), "--n", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "4 objects" in out
        assert "obj-0" in out

    def test_access_log_requires_n(self, tmp_path, capsys):
        log = tmp_path / "fleet.csv"
        log.write_text("1.0,0,a\n", encoding="utf-8")
        assert main(self.ARGS + ["--access-log", str(log)]) == 2
        assert "--n is required" in capsys.readouterr().err

    def test_access_log_collision_exits_2(self, tmp_path, capsys):
        log = tmp_path / "fleet.csv"
        log.write_text("1.0,0,a\n1.0,1,a\n", encoding="utf-8")
        assert main(self.ARGS + ["--access-log", str(log), "--n", "2"]) == 2
        assert "object a" in capsys.readouterr().err

    def test_unknown_scenario_exits_2(self, capsys):
        assert main(self.ARGS + ["--scenario", "nope"]) == 2
        assert "nope" in capsys.readouterr().err

    def test_no_optimal(self, capsys):
        rc = main(
            self.ARGS
            + ["--scenario", "smoke", "--objects", "6", "--no-optimal"]
        )
        assert rc == 0
        assert "fleet ratio" not in capsys.readouterr().out
