"""Tests for the multi-object system layer."""

from __future__ import annotations

import pytest

from repro import (
    ConventionalReplication,
    CostModel,
    LearningAugmentedReplication,
    OraclePredictor,
    Trace,
    TraceError,
    optimal_cost,
    simulate,
)
from repro.system import (
    FleetReport,
    MultiObjectSystem,
    ObjectSpec,
    split_trace_by_object,
)
from repro.workloads import uniform_random_trace


def oracle_factory(alpha=0.3):
    def factory(trace, model):
        return LearningAugmentedReplication(OraclePredictor(trace), alpha)

    return factory


def conventional_factory(trace, model):
    return ConventionalReplication()


class TestObjectSpec:
    def test_lambda_validated(self):
        tr = Trace(2, [(1.0, 1)])
        with pytest.raises(ValueError):
            ObjectSpec("o", tr, lam=0.0, policy_factory=conventional_factory)


class TestMultiObjectSystem:
    def _specs(self, n=3, k=4):
        specs = []
        for i in range(k):
            tr = uniform_random_trace(n, 15 + i * 5, horizon=40.0, seed=i)
            specs.append(
                ObjectSpec(
                    f"obj-{i}", tr, lam=float(i + 1), policy_factory=oracle_factory()
                )
            )
        return specs

    def test_duplicate_ids_rejected(self):
        tr = uniform_random_trace(2, 5, 10.0, seed=0)
        specs = [
            ObjectSpec("same", tr, 1.0, conventional_factory),
            ObjectSpec("same", tr, 1.0, conventional_factory),
        ]
        with pytest.raises(ValueError, match="unique"):
            MultiObjectSystem(2, specs)

    def test_trace_n_mismatch_rejected(self):
        tr = uniform_random_trace(3, 5, 10.0, seed=0)
        with pytest.raises(ValueError, match="trace.n"):
            MultiObjectSystem(
                2, [ObjectSpec("o", tr, 1.0, conventional_factory)]
            )

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            MultiObjectSystem(0, [])

    def test_run_aggregates(self):
        system = MultiObjectSystem(3, self._specs())
        report = system.run()
        assert len(report.outcomes) == 4
        assert report.online_total == pytest.approx(
            sum(o.online for o in report.outcomes)
        )
        assert report.optimal_total == pytest.approx(
            sum(o.optimal for o in report.outcomes)
        )

    def test_per_object_matches_standalone(self):
        specs = self._specs(k=2)
        report = MultiObjectSystem(3, specs).run()
        for spec, outcome in zip(specs, report.outcomes):
            model = CostModel(lam=spec.lam, n=3)
            pol = LearningAugmentedReplication(OraclePredictor(spec.trace), 0.3)
            standalone = simulate(spec.trace, model, pol)
            assert outcome.online == pytest.approx(standalone.total_cost)
            assert outcome.optimal == pytest.approx(
                optimal_cost(spec.trace, model)
            )

    def test_fleet_ratio_between_min_and_max(self):
        report = MultiObjectSystem(3, self._specs()).run()
        ratios = [o.ratio for o in report.outcomes]
        assert min(ratios) - 1e-9 <= report.fleet_ratio <= max(ratios) + 1e-9
        assert report.worst_object_ratio == pytest.approx(max(ratios))

    def test_skip_optimal(self):
        report = MultiObjectSystem(3, self._specs(k=1)).run(compute_optimal=False)
        assert report.outcomes[0].optimal == 0.0

    def test_summary_table(self):
        report = MultiObjectSystem(3, self._specs(k=2)).run()
        table = report.summary_table()
        assert "obj-0" in table and "TOTAL" in table

    def test_by_object(self):
        report = MultiObjectSystem(3, self._specs(k=2)).run()
        assert set(report.by_object()) == {"obj-0", "obj-1"}

    def test_empty_fleet(self):
        report = FleetReport()
        assert report.fleet_ratio == 1.0
        assert report.worst_object_ratio == 1.0


class TestSplitByObject:
    def test_basic_split(self):
        accesses = [
            (1.0, 0, "a"),
            (2.0, 1, "b"),
            (3.0, 1, "a"),
            (4.0, 0, "b"),
        ]
        traces = split_trace_by_object(accesses, n=2)
        assert set(traces) == {"a", "b"}
        assert [r.time for r in traces["a"]] == [1.0, 3.0]
        assert [r.server for r in traces["b"]] == [1, 0]

    def test_unordered_input(self):
        accesses = [(3.0, 0, "a"), (1.0, 1, "a")]
        traces = split_trace_by_object(accesses, n=2)
        assert [r.time for r in traces["a"]] == [1.0, 3.0]

    def test_collision_raises_with_object_id(self):
        accesses = [(1.0, 0, "x"), (1.0, 1, "x")]
        with pytest.raises(TraceError, match="object x"):
            split_trace_by_object(accesses, n=2)
