"""Tests for the sweep harness (the Figures 25-28 machinery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sweep import (
    PAPER_ACCURACIES,
    PAPER_ALPHAS,
    PAPER_LAMBDAS,
    SweepPoint,
    format_table,
    sweep_grid,
)
from repro.analysis.theory import consistency_bound, robustness_bound
from repro.workloads import ibm_like_trace


@pytest.fixture(scope="module")
def small_sweep():
    trace = ibm_like_trace(n=5, m=400, span=40_000.0, seed=1)
    return sweep_grid(
        trace,
        lambdas=(50.0, 500.0),
        alphas=(0.2, 0.6, 1.0),
        accuracies=(0.0, 0.5, 1.0),
        seed=0,
    ), trace


class TestGridShape:
    def test_paper_grids(self):
        assert len(PAPER_ALPHAS) == 11
        assert len(PAPER_ACCURACIES) == 11
        assert PAPER_LAMBDAS == (10.0, 100.0, 1000.0, 10000.0)

    def test_point_count(self, small_sweep):
        result, _ = small_sweep
        assert len(result.points) == 2 * 3 * 3

    def test_lookup(self, small_sweep):
        result, _ = small_sweep
        p = result.at(50.0, 0.2, 0.5)
        assert isinstance(p, SweepPoint)
        with pytest.raises(KeyError):
            result.at(51.0, 0.2, 0.5)

    def test_axes(self, small_sweep):
        result, _ = small_sweep
        assert result.lambdas() == [50.0, 500.0]
        assert result.alphas() == [0.2, 0.6, 1.0]
        assert result.accuracies() == [0.0, 0.5, 1.0]

    def test_matrix_shape(self, small_sweep):
        result, _ = small_sweep
        mat = result.ratios_for_lambda(50.0)
        assert mat.shape == (3, 3)
        assert np.all(np.isfinite(mat))


class TestPaperShapeClaims:
    """The qualitative claims of Appendix J.2 on the small grid."""

    def test_all_ratios_at_least_one(self, small_sweep):
        result, _ = small_sweep
        assert all(p.ratio >= 1.0 - 1e-9 for p in result.points)

    def test_robustness_bound_everywhere(self, small_sweep):
        result, _ = small_sweep
        for p in result.points:
            if p.alpha > 0:
                assert p.ratio <= robustness_bound(p.alpha) + 1e-7

    def test_consistency_bound_at_full_accuracy(self, small_sweep):
        result, _ = small_sweep
        for p in result.points:
            if p.accuracy == 1.0:
                assert p.ratio <= consistency_bound(p.alpha) + 1e-7

    def test_alpha_one_row_constant_across_accuracy(self, small_sweep):
        result, _ = small_sweep
        for lam in result.lambdas():
            ratios = [
                result.at(lam, 1.0, acc).ratio for acc in result.accuracies()
            ]
            assert max(ratios) - min(ratios) < 1e-9

    def test_perfect_predictions_never_worse_than_zero_accuracy(self, small_sweep):
        result, _ = small_sweep
        for lam in result.lambdas():
            for alpha in (0.2, 0.6):
                good = result.at(lam, alpha, 1.0).ratio
                bad = result.at(lam, alpha, 0.0).ratio
                assert good <= bad + 1e-9


class TestFormatTable:
    def test_renders_all_cells(self, small_sweep):
        result, _ = small_sweep
        table = format_table(result, 50.0)
        assert "lambda = 50" in table
        assert table.count("\n") == 4  # header + axis row + 3 alpha rows

    def test_custom_title(self, small_sweep):
        result, _ = small_sweep
        assert format_table(result, 50.0, title="Figure X").startswith("Figure X")


class TestOptimalCache:
    def test_cache_reused(self):
        trace = ibm_like_trace(n=4, m=200, span=20_000.0, seed=2)
        cache: dict[float, float] = {}
        sweep_grid(trace, (100.0,), (0.5,), (1.0,), optimal_cache=cache)
        assert 100.0 in cache
        first = cache[100.0]
        sweep_grid(trace, (100.0,), (1.0,), (0.0,), optimal_cache=cache)
        assert cache[100.0] == first
