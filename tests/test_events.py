"""Unit tests for repro.core.events."""

from __future__ import annotations

import pytest

from repro.core.events import Event, EventKind, EventLog


def _ev(t, kind, server=0, source=-1):
    return Event(t, kind, server, source)


class TestEventLog:
    def test_append_and_len(self):
        log = EventLog()
        log.append(_ev(1.0, EventKind.REQUEST))
        log.append(_ev(2.0, EventKind.CREATE))
        assert len(log) == 2

    def test_time_order_enforced(self):
        log = EventLog()
        log.append(_ev(2.0, EventKind.REQUEST))
        with pytest.raises(ValueError):
            log.append(_ev(1.0, EventKind.CREATE))

    def test_equal_times_allowed(self):
        log = EventLog()
        log.append(_ev(1.0, EventKind.REQUEST))
        log.append(_ev(1.0, EventKind.CREATE))
        assert len(log) == 2

    def test_of_kind(self):
        log = EventLog()
        log.append(_ev(1.0, EventKind.REQUEST))
        log.append(_ev(2.0, EventKind.CREATE, 1))
        log.append(_ev(3.0, EventKind.REQUEST))
        assert len(log.of_kind(EventKind.REQUEST)) == 2
        assert log.of_kind(EventKind.CREATE)[0].server == 1

    def test_iter(self):
        log = EventLog()
        log.append(_ev(1.0, EventKind.REQUEST))
        assert [e.time for e in log] == [1.0]


class TestCopyCountTrajectory:
    def test_empty_log_empty_trajectory(self):
        log = EventLog()
        assert log.copy_count_trajectory() == []

    def test_create_drop_sequence(self):
        log = EventLog()
        log.append(_ev(0.0, EventKind.CREATE, 0))
        log.append(_ev(1.0, EventKind.CREATE, 1))
        log.append(_ev(2.0, EventKind.DROP, 0))
        log.append(_ev(3.0, EventKind.CREATE, 2))
        traj = log.copy_count_trajectory()
        assert traj == [(0.0, 1), (1.0, 2), (2.0, 1), (3.0, 2)]

    def test_verify_at_least_one_copy_ok(self):
        log = EventLog()
        log.append(_ev(0.0, EventKind.CREATE, 0))
        log.append(_ev(1.0, EventKind.CREATE, 1))
        log.append(_ev(2.0, EventKind.DROP, 0))
        log.verify_at_least_one_copy()

    def test_verify_at_least_one_copy_fails(self):
        log = EventLog()
        log.append(_ev(0.0, EventKind.CREATE, 0))
        log.append(_ev(1.0, EventKind.DROP, 0))
        log.append(_ev(2.0, EventKind.CREATE, 1))
        with pytest.raises(AssertionError):
            log.verify_at_least_one_copy()


class TestHoldingsIntervals:
    def test_initial_copy_interval(self):
        log = EventLog()
        log.append(_ev(0.0, EventKind.CREATE, 0))
        log.append(_ev(5.0, EventKind.DROP, 0))
        iv = log.holdings_intervals()
        assert iv[0] == [(0.0, 5.0)]

    def test_open_interval_closed_at_last_event(self):
        log = EventLog()
        log.append(_ev(1.0, EventKind.CREATE, 1))
        log.append(_ev(9.0, EventKind.REQUEST, 1))
        iv = log.holdings_intervals()
        assert iv[1] == [(1.0, 9.0)]

    def test_double_create_rejected(self):
        log = EventLog()
        log.append(_ev(1.0, EventKind.CREATE, 1))
        log.append(_ev(2.0, EventKind.CREATE, 1))
        with pytest.raises(ValueError):
            log.holdings_intervals()

    def test_drop_without_copy_rejected(self):
        log = EventLog()
        log.append(_ev(1.0, EventKind.DROP, 3))
        with pytest.raises(ValueError):
            log.holdings_intervals()

    def test_multiple_intervals_per_server(self):
        log = EventLog()
        log.append(_ev(1.0, EventKind.CREATE, 1))
        log.append(_ev(2.0, EventKind.DROP, 1))
        log.append(_ev(3.0, EventKind.CREATE, 1))
        log.append(_ev(4.0, EventKind.DROP, 1))
        iv = log.holdings_intervals()
        assert iv[1] == [(1.0, 2.0), (3.0, 4.0)]
