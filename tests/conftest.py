"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import CostModel, Trace
from repro.workloads import uniform_random_trace


@pytest.fixture
def two_server_model() -> CostModel:
    return CostModel(lam=10.0, n=2)


@pytest.fixture
def small_trace() -> Trace:
    """Deterministic 2-server trace with a mix of short and long gaps."""
    return Trace(2, [(1.0, 1), (2.0, 0), (15.0, 1), (16.0, 1), (40.0, 0)])


@pytest.fixture
def medium_trace() -> Trace:
    return uniform_random_trace(n=4, m=60, horizon=500.0, seed=11)


def random_instance(rng: np.random.Generator, max_n: int = 5, max_m: int = 50):
    """Sample a random (trace, model) pair for randomized tests."""
    n = int(rng.integers(1, max_n + 1))
    m = int(rng.integers(1, max_m + 1))
    lam = float(rng.uniform(0.1, 10.0))
    horizon = float(rng.uniform(1.0, 100.0))
    seed = int(rng.integers(0, 2**31))
    trace = uniform_random_trace(n, m, horizon, seed=seed)
    return trace, CostModel(lam=lam, n=n)
