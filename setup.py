"""Setup shim.

The execution environment ships setuptools without the ``wheel`` package,
so PEP 660 editable installs (``pip install -e .``) cannot build the
editable wheel.  This shim lets ``python setup.py develop`` (which pip
falls back to) work offline; all metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
