#!/usr/bin/env python3
"""Fleet scenario: replicating many objects with heterogeneous sizes.

A storage service hosts many objects; each object's transfer cost scales
with its size, and each has its own access pattern (hot/warm/cold).  The
paper's footnote justifies per-object decomposition; this example runs
the whole fleet through :class:`repro.system.MultiObjectSystem` with a
weighted-majority ensemble of learned predictors per object, and reports
per-object and fleet-level competitive ratios.

Run:  python examples/multi_object_fleet.py [--engine auto|reference]

The learned ensembles observe requests one at a time, so they are never
streamable and ``auto`` falls back to the reference engine per object.
(The strict ``fast``/``batch`` engines would refuse them outright;
they become useful when you swap in oracle/noisy/fixed predictors and
want cost-only fleets.)
"""

import argparse

import numpy as np

from repro import LearningAugmentedReplication
from repro.predictions import (
    EwmaPredictor,
    LastGapPredictor,
    SlidingWindowPredictor,
    WeightedMajorityPredictor,
)
from repro.system import MultiObjectSystem, ObjectSpec
from repro.workloads import bursty_trace, poisson_trace


def ensemble_factory(alpha: float):
    """A fresh learned-predictor ensemble per object (no state leaks)."""

    def factory(trace, model):
        ensemble = WeightedMajorityPredictor(
            [EwmaPredictor(decay=0.4), LastGapPredictor(), SlidingWindowPredictor(5)],
            eta=0.3,
        )
        return LearningAugmentedReplication(ensemble, alpha)

    return factory


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--engine", choices=("auto", "reference"), default="reference",
        help="simulation engine for per-object runs (default: reference, "
        "which keeps full telemetry in the report; the ensembles here "
        "are not streamable, so the strict fast/batch engines would "
        "refuse them)",
    )
    args = parser.parse_args()

    n = 10
    rng = np.random.default_rng(7)
    specs = []

    # hot objects: frequent bursty access, small size (cheap transfers)
    for k in range(4):
        trace = bursty_trace(
            n=n,
            n_bursts=120,
            burst_size=6,
            burst_spread=20.0,
            quiet_gap=600.0,
            seed=100 + k,
        )
        specs.append(
            ObjectSpec(f"hot-{k}", trace, lam=60.0, policy_factory=ensemble_factory(0.25))
        )

    # warm objects: steady Poisson access, medium size
    for k in range(3):
        trace = poisson_trace(n=n, rate=0.004, horizon=200_000.0, seed=200 + k)
        specs.append(
            ObjectSpec(f"warm-{k}", trace, lam=800.0, policy_factory=ensemble_factory(0.25))
        )

    # cold objects: rare access, large size (expensive transfers)
    for k in range(3):
        trace = poisson_trace(n=n, rate=0.0004, horizon=200_000.0, seed=300 + k)
        specs.append(
            ObjectSpec(f"cold-{k}", trace, lam=5_000.0, policy_factory=ensemble_factory(0.25))
        )

    system = MultiObjectSystem(n, specs)
    report = system.run(engine=args.engine)
    print(report.summary_table())
    print(
        f"\nfleet-level ratio {report.fleet_ratio:.3f}; worst object "
        f"{report.worst_object_ratio:.3f}"
    )
    print(
        "per-object guarantees compose: the fleet ratio is a cost-weighted "
        "average of per-object ratios, so no object class can silently "
        "subsidise another."
    )


if __name__ == "__main__":
    main()
