#!/usr/bin/env python3
"""CDN scenario: replicating a hot object across edge PoPs.

A content-delivery network serves one popular object from 12 points of
presence.  Client demand is bursty (flash crowds) and skewed (a few PoPs
see most traffic).  No oracle exists in production, so we use the
*history-based* predictors — the realistic deployment mode of the
paper's algorithm — and compare against the prediction-free baselines.

Run:  python examples/cdn_replication.py
"""

from repro import (
    AlwaysHold,
    ConventionalReplication,
    CostModel,
    EwmaPredictor,
    LastGapPredictor,
    LearningAugmentedReplication,
    MarkovChainPredictor,
    NeverHold,
    SlidingWindowPredictor,
    optimal_cost,
    simulate,
)
from repro.predictions import evaluate_predictor, realized_accuracy
from repro.workloads import bursty_trace


def main() -> None:
    # flash-crowd traffic: bursts of closely spaced requests at one PoP,
    # separated by quiet periods
    trace = bursty_trace(
        n=12,
        n_bursts=250,
        burst_size=8,
        burst_spread=30.0,       # a burst spans ~30 s
        quiet_gap=1800.0,        # ~30 min of quiet between bursts
        seed=2024,
    )
    lam = 300.0  # transfer = 5 minutes of storage
    model = CostModel(lam=lam, n=trace.n)
    opt = optimal_cost(trace, model)

    print(f"CDN workload: {len(trace)} requests, {trace.n} PoPs, "
          f"span {trace.span / 3600:.1f} h")
    print(f"optimal offline cost: {opt:,.0f}\n")

    contenders = [
        ("never replicate (origin only)", NeverHold()),
        ("replicate everywhere", AlwaysHold()),
        ("conventional (no predictions)", ConventionalReplication()),
    ]
    for name, predictor in (
        ("EWMA", EwmaPredictor(decay=0.4)),
        ("last-gap", LastGapPredictor()),
        ("sliding-window", SlidingWindowPredictor(window=5)),
        ("Markov", MarkovChainPredictor()),
    ):
        contenders.append(
            (
                f"Algorithm 1 + {name}",
                LearningAugmentedReplication(predictor, alpha=0.25),
            )
        )

    print(f"{'strategy':<34} {'cost':>12} {'ratio':>7} {'transfers':>10}")
    for name, policy in contenders:
        run = simulate(trace, model, policy)
        print(
            f"{name:<34} {run.total_cost:>12,.0f} "
            f"{run.total_cost / opt:>7.3f} {run.ledger.n_transfers:>10}"
        )

    print("\nrealized prediction accuracy on this workload:")
    for name, predictor in (
        ("EWMA", EwmaPredictor(decay=0.4)),
        ("last-gap", LastGapPredictor()),
        ("sliding-window", SlidingWindowPredictor(window=5)),
        ("Markov", MarkovChainPredictor()),
    ):
        outcomes = evaluate_predictor(trace, predictor, lam)
        print(f"  {name:<16} {realized_accuracy(outcomes):6.1%}")

    print(
        "\nbursty traffic is highly predictable (a request inside a burst "
        "is almost always followed within lambda), so even simple learned "
        "predictors let Algorithm 1 approach the offline optimum while "
        "the prediction-free baseline pays its full 2-competitive premium."
    )


if __name__ == "__main__":
    main()
