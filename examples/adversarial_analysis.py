#!/usr/bin/env python3
"""Adversarial analysis: reproducing the paper's negative results.

Three constructions from the paper, evaluated numerically:

* Figure 5 — Algorithm 1's robustness ``1 + 1/alpha`` is *tight*;
* Figure 6 — Algorithm 1's consistency ``(5 + alpha)/3`` is *tight*;
* Section 9 — no deterministic learning-augmented algorithm can have
  consistency below 3/2 (an adaptive adversary that reacts to the
  algorithm's behaviour in real time);
* Section 11 / Figure 9 — Wang et al.'s claimed 2-competitive algorithm
  is actually no better than 5/2-competitive.

Run:  python examples/adversarial_analysis.py
"""

from repro import (
    ConventionalReplication,
    CostModel,
    FixedPredictor,
    LearningAugmentedReplication,
    OraclePredictor,
    WangReplication,
    optimal_cost,
    simulate,
)
from repro.analysis.theory import consistency_bound, robustness_bound
from repro.workloads import (
    LowerBoundAdversary,
    consistency_tight_trace,
    robustness_tight_trace,
    wang_counterexample_trace,
)

LAM = 100.0


def figure5() -> None:
    print("=== Figure 5: tight robustness (always-wrong predictions) ===")
    print(f"{'alpha':>6} {'measured':>9} {'bound 1+1/a':>12}")
    for alpha in (0.2, 0.4, 0.6, 0.8, 1.0):
        tr = robustness_tight_trace(LAM, alpha, m=4001, eps=LAM * 1e-5)
        pol = LearningAugmentedReplication(FixedPredictor(False), alpha)
        run = simulate(tr, CostModel(lam=LAM, n=2), pol)
        ratio = run.total_cost / optimal_cost(tr, CostModel(lam=LAM, n=2))
        print(f"{alpha:>6.1f} {ratio:>9.4f} {robustness_bound(alpha):>12.4f}")


def figure6() -> None:
    print("\n=== Figure 6: tight consistency (perfect predictions) ===")
    print(f"{'alpha':>6} {'measured':>9} {'bound (5+a)/3':>14}")
    for alpha in (0.0, 0.25, 0.5, 0.75, 1.0):
        tr = consistency_tight_trace(LAM, cycles=300, eps=LAM * 1e-6)
        pol = LearningAugmentedReplication(
            OraclePredictor(tr), alpha, allow_zero_alpha=True
        )
        run = simulate(tr, CostModel(lam=LAM, n=2), pol)
        ratio = run.total_cost / optimal_cost(tr, CostModel(lam=LAM, n=2))
        print(f"{alpha:>6.2f} {ratio:>9.4f} {consistency_bound(alpha):>14.4f}")


def section9() -> None:
    print("\n=== Section 9: the 3/2 lower bound (adaptive adversary) ===")
    print("the adversary watches the algorithm and generates the worst "
          "next request;\npredictions remain 100% correct throughout.")
    print(f"{'algorithm':<28} {'measured ratio':>15}")
    for name, pol in (
        ("Algorithm 1, alpha=0.3", LearningAugmentedReplication(FixedPredictor(False), 0.3)),
        ("Algorithm 1, alpha=0.7", LearningAugmentedReplication(FixedPredictor(False), 0.7)),
        ("conventional (alpha=1)", ConventionalReplication()),
    ):
        adv = LowerBoundAdversary(lam=LAM, eps=LAM * 1e-4)
        out = adv.run(pol, n_requests=800)
        opt = optimal_cost(out.trace, CostModel(lam=LAM, n=2))
        print(f"{name:<28} {out.result.total_cost / opt:>15.4f}")
    print("every deterministic algorithm lands at >= 1.5 — matching the "
          "paper's impossibility result.")


def figure9() -> None:
    print("\n=== Figure 9: Wang et al. [17] is not 2-competitive ===")
    print(f"{'m (requests)':>13} {'measured ratio':>15}")
    for m in (50, 200, 800, 3200):
        tr = wang_counterexample_trace(LAM, m=m, eps=LAM * 1e-5)
        run = simulate(tr, CostModel(lam=LAM, n=2), WangReplication())
        opt = optimal_cost(tr, CostModel(lam=LAM, n=2))
        print(f"{m:>13} {run.total_cost / opt:>15.4f}")
    print("the ratio converges to 5/2, refuting the claimed bound of 2.")


if __name__ == "__main__":
    figure5()
    figure6()
    section9()
    figure9()
