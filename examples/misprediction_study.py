#!/usr/bin/env python3
"""Misprediction study: how prediction errors translate into cost.

Section 8 of the paper bounds the online-cost increase caused by each
mispredicted request: requests in ``M2`` (real gap in
``(alpha*lambda, lambda]``) cost at most ``lambda`` extra, requests in
``M3`` (gap beyond ``lambda``) at most ``(2 - alpha) * lambda``, and
``M1`` mispredictions are free.  This script measures the actual
increase against that bound (equation 11) across accuracy levels.

Run:  python examples/misprediction_study.py
"""

from repro import (
    CostModel,
    LearningAugmentedReplication,
    NoisyOraclePredictor,
    OraclePredictor,
    optimal_cost,
    simulate,
)
from repro.analysis.theory import misprediction_penalty_bound
from repro.offline import opt_lower_bound
from repro.predictions import classify_mispredictions, evaluate_predictor
from repro.workloads import ibm_like_trace


def main() -> None:
    lam, alpha = 800.0, 0.3
    trace = ibm_like_trace(n=10, m=4000, span=250_000.0, seed=17)
    model = CostModel(lam=lam, n=trace.n)
    opt = optimal_cost(trace, model)
    opt_l = opt_lower_bound(trace, model)

    perfect = simulate(
        trace, model, LearningAugmentedReplication(OraclePredictor(trace), alpha)
    )
    print(
        f"workload: {len(trace)} requests, lambda={lam:g}, alpha={alpha}\n"
        f"optimal offline cost {opt:,.0f} (lower bound OPT_L {opt_l:,.0f})\n"
        f"perfect-prediction online cost {perfect.total_cost:,.0f} "
        f"(ratio {perfect.total_cost / opt:.3f})\n"
    )

    header = (
        f"{'acc':>5} {'|M1|':>6} {'|M2|':>6} {'|M3|':>6} "
        f"{'actual increase':>16} {'eq.(11) bound':>14} {'tightness':>10}"
    )
    print(header)
    for accuracy in (0.95, 0.9, 0.8, 0.6, 0.4, 0.2, 0.0):
        seed = 101
        pred = NoisyOraclePredictor(trace, accuracy, seed=seed)
        run = simulate(trace, model, LearningAugmentedReplication(pred, alpha))
        outcomes = evaluate_predictor(
            trace, NoisyOraclePredictor(trace, accuracy, seed=seed), lam
        )
        sets_ = classify_mispredictions(trace, outcomes, lam, alpha)
        actual = run.total_cost - perfect.total_cost
        bound = misprediction_penalty_bound(len(sets_.m2), len(sets_.m3), lam, alpha)
        tightness = actual / bound if bound > 0 else float("nan")
        print(
            f"{accuracy:>5.0%} {len(sets_.m1):>6} {len(sets_.m2):>6} "
            f"{len(sets_.m3):>6} {actual:>16,.0f} {bound:>14,.0f} "
            f"{tightness:>10.2f}"
        )

    print(
        "\nthe measured increase always stays below the bound; M1 "
        "mispredictions (very short gaps) are indeed free, and the bound "
        "is loose by design — it charges the worst case per request."
    )


if __name__ == "__main__":
    main()
