#!/usr/bin/env python3
"""Edge-computing scenario: bounded-risk replication with flaky predictions.

An edge platform caches a model artifact across sites.  A third-party
forecaster predicts request inter-arrival times, but its quality swings
between excellent and terrible (e.g. when traffic regime shifts).  The
operator wants the upside of predictions *with a hard guarantee*: never
pay more than ``2 + beta`` times the optimum.

This is exactly the adapted Algorithm 1 of Section 8: it monitors an
upper bound of the online-to-optimal ratio online and falls back to the
conventional (2-competitive) behaviour whenever the monitor trips.

Run:  python examples/edge_computing.py
"""

from repro import (
    AdaptiveReplication,
    CostModel,
    LearningAugmentedReplication,
    NoisyOraclePredictor,
    optimal_cost,
    simulate,
)
from repro.workloads import ibm_like_trace, robustness_tight_trace


def compare(trace, lam, alpha, beta, accuracy, seed=0, warmup=100):
    model = CostModel(lam=lam, n=trace.n)
    opt = optimal_cost(trace, model)

    plain = simulate(
        trace,
        model,
        LearningAugmentedReplication(
            NoisyOraclePredictor(trace, accuracy, seed=seed), alpha
        ),
    )
    adaptive_policy = AdaptiveReplication(
        NoisyOraclePredictor(trace, accuracy, seed=seed),
        alpha,
        beta=beta,
        warmup=warmup,
    )
    adapted = simulate(trace, model, adaptive_policy)
    fallback_frac = (
        sum(1 for (_, _, f) in adaptive_policy.monitor_history if f)
        / max(1, len(adaptive_policy.monitor_history))
    )
    return plain.total_cost / opt, adapted.total_cost / opt, fallback_frac


def main() -> None:
    alpha, beta = 0.15, 0.1
    print(f"adaptive replication: alpha={alpha}, robustness target 2+beta="
          f"{2 + beta}\n")

    # regime 1: realistic workload, varying prediction quality
    trace = ibm_like_trace(n=8, m=3000, span=200_000.0, seed=9)
    lam = 1000.0
    print(f"[edge workload] {len(trace)} requests, lambda={lam:g}")
    print(f"{'accuracy':>9} {'plain ratio':>12} {'adaptive ratio':>15} "
          f"{'fallback %':>11}")
    for accuracy in (1.0, 0.8, 0.5, 0.2, 0.0):
        plain, adapted, fb = compare(trace, lam, alpha, beta, accuracy)
        print(f"{accuracy:>9.0%} {plain:>12.3f} {adapted:>15.3f} {fb:>11.1%}")

    # regime 2: the worst case — the Figure 5 adversarial pattern, where
    # plain Algorithm 1 with alpha=0.15 is pushed toward 1 + 1/alpha = 7.7
    lam = 200.0
    adversarial = robustness_tight_trace(lam, alpha, m=3000, eps=lam * 1e-4)
    print(f"\n[adversarial regime] Figure 5 pattern, lambda={lam:g}")
    plain, adapted, fb = compare(
        adversarial, lam, alpha, beta, accuracy=0.0, warmup=50
    )
    print(f"  plain Algorithm 1 ratio:    {plain:.3f} "
          f"(heading to {1 + 1 / alpha:.2f})")
    print(f"  adaptive ratio:             {adapted:.3f} "
          f"(target {2 + beta:.2f}, warm-up overhead included)")
    print(f"  time in conventional mode:  {fb:.1%}")

    print(
        "\nthe adaptive variant tracks plain Algorithm 1 when predictions "
        "help and caps the damage at the configured robustness when they "
        "do not — the operator's guarantee holds in both regimes."
    )


if __name__ == "__main__":
    main()
