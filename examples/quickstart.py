#!/usr/bin/env python3
"""Quickstart: simulate Algorithm 1 on a synthetic workload.

Demonstrates the core loop of the library:

1. generate a request trace over geo-distributed servers;
2. pick a cost model (transfer cost ``lambda``, storage rate 1);
3. run the paper's learning-augmented replication algorithm with a
   predictor of your choice;
4. compare the online cost with the exact optimal offline cost.

Run:  python examples/quickstart.py
"""

from repro import (
    CostModel,
    LearningAugmentedReplication,
    NoisyOraclePredictor,
    OraclePredictor,
    optimal_cost,
    simulate,
)
from repro.analysis.theory import consistency_bound, robustness_bound
from repro.workloads import poisson_trace


def main() -> None:
    # a 10-server system with Poisson arrivals, Zipf-skewed over servers
    trace = poisson_trace(n=10, rate=0.02, horizon=500_000.0, seed=42)
    print(f"workload: {len(trace)} requests over {trace.span / 3600:.1f} hours "
          f"on {trace.n} servers")

    lam = 1000.0  # one transfer costs as much as ~17 minutes of storage
    model = CostModel(lam=lam, n=trace.n)
    opt = optimal_cost(trace, model)
    print(f"optimal offline cost: {opt:,.0f}\n")

    alpha = 0.2  # trust predictions substantially (alpha -> 0 = full trust)
    print(f"{'predictor':<28} {'online cost':>14} {'ratio':>7}")
    for accuracy in (1.0, 0.9, 0.7, 0.5, 0.0):
        if accuracy == 1.0:
            predictor = OraclePredictor(trace)
        else:
            predictor = NoisyOraclePredictor(trace, accuracy, seed=7)
        policy = LearningAugmentedReplication(predictor, alpha=alpha)
        run = simulate(trace, model, policy)
        print(
            f"{predictor.name:<28} {run.total_cost:>14,.0f} "
            f"{run.total_cost / opt:>7.3f}"
        )

    print(
        f"\ntheory at alpha={alpha}: consistency <= "
        f"{consistency_bound(alpha):.3f}, robustness <= "
        f"{robustness_bound(alpha):.3f}"
    )
    print("note how the measured ratios interpolate between the two bounds "
          "as accuracy degrades.")


if __name__ == "__main__":
    main()
